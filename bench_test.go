// Benchmarks regenerating each experiment of the reproduction (one per
// table/figure family in DESIGN.md's index, E1–E15; E10–E14 run via cmd/paperbench). Each benchmark reports
// the headline quantity of its experiment as a custom metric — deviations,
// additional cache misses, or bound ratios — so `go test -bench=.` doubles
// as a compact reproduction run. The full tables come from cmd/paperbench.
package futurelocality_test

import (
	"testing"

	fl "futurelocality"
	"futurelocality/internal/adversary"
	"futurelocality/internal/cache"
	"futurelocality/internal/graphs"
	"futurelocality/internal/profile"
	"futurelocality/internal/runtime"
	"futurelocality/internal/sim"
)

// BenchmarkE1_Theorem8_UpperBound: future-first + random steals on a
// fork-join tree; reports max deviations over the run and the bound ratio.
func BenchmarkE1_Theorem8_UpperBound(b *testing.B) {
	g := graphs.ForkJoinTree(8, 6, true)
	span := g.Span()
	seq, err := sim.Sequential(g, sim.FutureFirst, 32, cache.LRU)
	if err != nil {
		b.Fatal(err)
	}
	order := seq.SeqOrder()
	var maxDev int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _ := sim.New(g, sim.Config{P: 8, Policy: sim.FutureFirst, CacheLines: 32,
			Control: sim.NewRandomControl(int64(i) + 1)})
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if d := sim.Deviations(order, res); d > maxDev {
			maxDev = d
		}
	}
	bound := float64(8) * float64(span) * float64(span)
	b.ReportMetric(float64(maxDev), "maxDeviations")
	b.ReportMetric(float64(maxDev)/bound, "dev/P·T∞²")
}

// BenchmarkE2_Theorem9_LowerBound: the Figure 6(c) adversarial schedule;
// reports deviations per n·k² (the tightness constant).
func BenchmarkE2_Theorem9_LowerBound(b *testing.B) {
	const n, k = 4, 16
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, info := graphs.Fig6c(n, k, 1, false)
		seq, err := sim.Sequential(g, sim.FutureFirst, 0, cache.LRU)
		if err != nil {
			b.Fatal(err)
		}
		eng, _ := sim.New(g, sim.Config{P: adversary.Procs6c(info), Policy: sim.FutureFirst,
			Control: adversary.Fig6c(info)})
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = float64(sim.Deviations(seq.SeqOrder(), res)) / float64(n*k*k)
	}
	b.ReportMetric(last, "dev/(n·k²)")
}

// BenchmarkE3_Theorem10_ParentFirst: the Figure 8 one-steal schedule;
// reports additional misses per C·t·n.
func BenchmarkE3_Theorem10_ParentFirst(b *testing.B) {
	const depth, n, C = 4, 12, 6
	var last float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, info := graphs.Fig8(depth, n, C, true)
		seq, err := sim.Sequential(g, sim.ParentFirst, C, cache.LRU)
		if err != nil {
			b.Fatal(err)
		}
		eng, _ := sim.New(g, sim.Config{P: 2, Policy: sim.ParentFirst, CacheLines: C,
			Control: adversary.OneSteal(info.R, info.SRoot)})
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		extra := res.TotalMisses - seq.TotalMisses
		last = float64(extra) / float64(C*len(info.LeafBlocks)*n)
	}
	b.ReportMetric(last, "extra/(C·t·n)")
}

// BenchmarkE4_PolicyComparison: both policies on the same Figure 8 graph;
// reports the parent-first / future-first additional-miss ratio.
func BenchmarkE4_PolicyComparison(b *testing.B) {
	const depth, n, C = 4, 12, 6
	g, info := graphs.Fig8(depth, n, C, true)
	seqPF, _ := sim.Sequential(g, sim.ParentFirst, C, cache.LRU)
	seqFF, _ := sim.Sequential(g, sim.FutureFirst, C, cache.LRU)
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engPF, _ := sim.New(g, sim.Config{P: 2, Policy: sim.ParentFirst, CacheLines: C,
			Control: adversary.OneSteal(info.R, info.SRoot)})
		resPF, err := engPF.Run()
		if err != nil {
			b.Fatal(err)
		}
		engFF, _ := sim.New(g, sim.Config{P: 2, Policy: sim.FutureFirst, CacheLines: C,
			Control: sim.NewRandomControl(int64(i) + 1)})
		resFF, err := engFF.Run()
		if err != nil {
			b.Fatal(err)
		}
		pf := resPF.TotalMisses - seqPF.TotalMisses
		ff := resFF.TotalMisses - seqFF.TotalMisses
		if ff < 1 {
			ff = 1
		}
		ratio = float64(pf) / float64(ff)
	}
	b.ReportMetric(ratio, "PF/FF-extraMisses")
}

// BenchmarkE5_Theorem12_LocalTouch: pipelines under future-first random
// stealing; reports the deviation/bound ratio.
func BenchmarkE5_Theorem12_LocalTouch(b *testing.B) {
	g := fl.Pipeline(4, 32, 3, true)
	span := g.Span()
	seq, _ := sim.Sequential(g, sim.FutureFirst, 32, cache.LRU)
	var maxDev int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _ := sim.New(g, sim.Config{P: 8, CacheLines: 32,
			Control: sim.NewRandomControl(int64(i) + 1)})
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if d := sim.Deviations(seq.SeqOrder(), res); d > maxDev {
			maxDev = d
		}
	}
	b.ReportMetric(float64(maxDev)/(8*float64(span)*float64(span)), "dev/P·T∞²")
}

// BenchmarkE6_SuperFinalNode: side-effect futures touched only by the super
// final node (Theorem 16/18 regime).
func BenchmarkE6_SuperFinalNode(b *testing.B) {
	bld := fl.NewBuilder()
	m := bld.Main()
	m.Step()
	for i := 0; i < 32; i++ {
		f := m.Fork()
		f.Steps(5)
		m.Step()
		if i%2 == 0 {
			m.Touch(f)
		}
	}
	g, err := bld.BuildSuperFinal()
	if err != nil {
		b.Fatal(err)
	}
	span := g.Span()
	seq, _ := sim.Sequential(g, sim.FutureFirst, 16, cache.LRU)
	var maxDev int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _ := sim.New(g, sim.Config{P: 8, CacheLines: 16,
			Control: sim.NewRandomControl(int64(i) + 1)})
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		if d := sim.Deviations(seq.SeqOrder(), res); d > maxDev {
			maxDev = d
		}
	}
	b.ReportMetric(float64(maxDev)/(8*float64(span)*float64(span)), "dev/P·T∞²")
}

// BenchmarkE7_Unstructured: the Figure 3 premature-touch scenario; reports
// premature touches per touch (1.0 = every touch checked too early).
func BenchmarkE7_Unstructured(b *testing.B) {
	const t, work = 16, 4
	var frac float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g, info := graphs.Fig3(t, work, false)
		eng, _ := sim.New(g, sim.Config{P: 2, Control: adversary.Fig3(info)})
		res, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		frac = float64(sim.PrematureTouches(g, res)) / float64(t)
	}
	b.ReportMetric(frac, "premature/touch")
}

// BenchmarkE8_LemmaInvariants: Lemma 4 machine-check over random structured
// programs; reports violations (must be 0).
func BenchmarkE8_LemmaInvariants(b *testing.B) {
	viol := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := graphs.RandomStructured(int64(i), graphs.RandomConfig{MaxNodes: 300, MaxBlocks: 8})
		vs, err := fl.CheckLemma4(g)
		if err != nil {
			b.Fatal(err)
		}
		viol += len(vs)
	}
	b.ReportMetric(float64(viol), "violations")
}

// ---------------------------------------------------------------------------
// E9: the real runtime.

func fibSeqB(n int) int {
	if n < 2 {
		return n
	}
	a, c := 0, 1
	for i := 2; i <= n; i++ {
		a, c = c, a+c
	}
	return c
}

func fibSpawnB(rt *runtime.Runtime, w *runtime.W, n int) int {
	if n < 16 {
		return fibSeqB(n)
	}
	f := runtime.Spawn(rt, w, func(w *runtime.W) int { return fibSpawnB(rt, w, n-1) })
	y := fibSpawnB(rt, w, n-2)
	return f.Touch(w) + y
}

func fibJoinB(rt *runtime.Runtime, w *runtime.W, n int) int {
	if n < 16 {
		return fibSeqB(n)
	}
	a, c := runtime.Join2(rt, w,
		func(w *runtime.W) int { return fibJoinB(rt, w, n-1) },
		func(w *runtime.W) int { return fibJoinB(rt, w, n-2) },
	)
	return a + c
}

func fibGoB(n int) int {
	if n < 16 {
		return fibSeqB(n)
	}
	ch := make(chan int, 1)
	go func() { ch <- fibGoB(n - 1) }()
	y := fibGoB(n - 2)
	return <-ch + y
}

// BenchmarkE9_RuntimeFibSpawn: help-first futures on the real runtime.
func BenchmarkE9_RuntimeFibSpawn(b *testing.B) {
	rt := runtime.New(runtime.WithWorkers(8))
	defer rt.Shutdown()
	want := fibSeqB(28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := runtime.Run(rt, func(w *runtime.W) int { return fibSpawnB(rt, w, 28) }); got != want {
			b.Fatal(got)
		}
	}
}

// BenchmarkE9_RuntimeFibJoin: work-first (future-first) fork-join.
func BenchmarkE9_RuntimeFibJoin(b *testing.B) {
	rt := runtime.New(runtime.WithWorkers(8))
	defer rt.Shutdown()
	want := fibSeqB(28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := runtime.Run(rt, func(w *runtime.W) int { return fibJoinB(rt, w, 28) }); got != want {
			b.Fatal(got)
		}
	}
}

// BenchmarkE9_RuntimeFibGoroutines: the goroutine-per-future baseline.
func BenchmarkE9_RuntimeFibGoroutines(b *testing.B) {
	want := fibSeqB(28)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := fibGoB(28); got != want {
			b.Fatal(got)
		}
	}
}

// BenchmarkE15_ProfiledRun: the full live-profiler pipeline — record a real
// run, reconstruct its DAG, classify, and sim-replay. Reports the
// reconstruction size as a custom metric.
func BenchmarkE15_ProfiledRun(b *testing.B) {
	rt := runtime.New(runtime.WithWorkers(4))
	defer rt.Shutdown()
	var nodes float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.StartProfile(); err != nil {
			b.Fatal(err)
		}
		runtime.Run(rt, func(w *runtime.W) int { return fibSpawnB(rt, w, 22) })
		rep, err := rt.ProfileReport(profile.Options{Trials: 1})
		if err != nil {
			b.Fatal(err)
		}
		if !rep.Class.SingleTouch {
			b.Fatal("profiled fib must reconstruct single-touch")
		}
		nodes = float64(rep.Work)
	}
	b.ReportMetric(nodes, "reconstructedNodes")
}

// ---------------------------------------------------------------------------
// Substrate micro-benchmarks.

// BenchmarkSimulatorNodesPerSec measures raw simulator throughput.
func BenchmarkSimulatorNodesPerSec(b *testing.B) {
	g := graphs.ForkJoinTree(10, 8, true)
	b.SetBytes(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng, _ := sim.New(g, sim.Config{P: 8, CacheLines: 64,
			Control: sim.NewRandomControl(int64(i) + 1)})
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(g.Len())*float64(b.N)/b.Elapsed().Seconds(), "nodes/s")
}

// BenchmarkBuilderThroughput measures DAG construction speed.
func BenchmarkBuilderThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g := graphs.ForkJoinTree(10, 8, false)
		if g.Len() == 0 {
			b.Fatal("empty")
		}
	}
}

// BenchmarkClassify measures the structure classifier.
func BenchmarkClassify(b *testing.B) {
	g := graphs.ForkJoinTree(8, 4, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := fl.Classify(g)
		if !c.SingleTouch {
			b.Fatal("misclassified")
		}
	}
}
